// Package knobplumb verifies that every library-side construction of a
// configuration struct carrying a performance knob actually forwards the
// knob. PR 1 plumbed Parallelism through core.Selector, isos.Config,
// sampling.Config and geosel.Options, and PR 3 added PruneEps alongside
// it; a wrapper that builds one of these with keyed fields but silently
// omits a knob pins its callers to the default and loses the trade-off
// (or, worse, the determinism contract documentation attached to the
// knob). Deliberate omissions carry a per-knob annotation:
// "//geolint:serial" excuses a dropped Parallelism (paper-methodology
// benchmarks, for example), "//geolint:exact" excuses a dropped PruneEps
// (constructions that must stay on the exact-only default).
package knobplumb

import (
	"go/ast"
	"go/types"

	"geosel/tools/geolint/internal/analysis"
)

// knobs are the config fields every wrapper must forward, each with the
// directive that excuses a deliberate omission.
var knobs = []struct {
	name      string
	directive string
}{
	{"Parallelism", "serial"},
	{"PruneEps", "exact"},
}

// Analyzer is the knobplumb check.
var Analyzer = &analysis.Analyzer{
	Name: "knobplumb",
	Doc:  "flags keyed composite literals of knob-bearing config structs that drop the Parallelism or PruneEps knob (library packages only)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "main" {
		// Binaries and examples choose their own knob values; the
		// plumbing obligation is on library wrappers.
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			check(pass, lit)
			return true
		})
	}
	return nil
}

func check(pass *analysis.Pass, lit *ast.CompositeLit) {
	if len(lit.Elts) == 0 {
		return // zero value: an explicit "all defaults" is fine
	}
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok {
		return
	}
	st, ok := tv.Type.Underlying().(*types.Struct)
	if !ok {
		return
	}
	set := make(map[string]bool, len(lit.Elts))
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			return // positional literal: every field is present by construction
		}
		if key, ok := kv.Key.(*ast.Ident); ok {
			set[key.Name] = true
		}
	}
	for _, k := range knobs {
		if !hasField(st, k.name) || set[k.name] {
			continue
		}
		if pass.Suppressed(lit.Pos(), k.directive) {
			continue
		}
		pass.Reportf(lit.Pos(), "composite literal of %s sets %d field(s) but drops the %s knob; forward it or annotate the literal with //geolint:%s",
			tv.Type, len(lit.Elts), k.name, k.directive)
	}
}

func hasField(st *types.Struct, name string) bool {
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == name {
			return true
		}
	}
	return false
}
