package knobplumb_test

import (
	"testing"

	"geosel/tools/geolint/internal/analysis/analysistest"
	"geosel/tools/geolint/internal/analyzers/knobplumb"
)

func TestKnobPlumb(t *testing.T) {
	analysistest.Run(t, knobplumb.Analyzer, "testdata/wrap")
}
