// Package engine mimics the repository's unified engine config: same
// package path suffix and type name, so the knobplumb analyzer sees the
// embed shape it targets in production.
package engine

// Config is the stand-in unified engine configuration.
type Config struct {
	K           int
	ThetaFrac   float64
	Parallelism int
}
