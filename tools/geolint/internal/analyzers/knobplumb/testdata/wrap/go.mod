module example.com/wrap

go 1.22
