// Package wrap seeds a dropped-Parallelism-knob violation for the
// knobplumb analyzer, alongside compliant constructions.
package wrap

// Selector mimics a Parallelism-bearing config struct (core.Selector,
// isos.Config, ...).
type Selector struct {
	K           int
	Theta       float64
	Parallelism int
}

// Plain has no knob; its literals are never knobplumb's business.
type Plain struct {
	K int
}

// dropped is the seeded violation: a keyed literal that configures the
// selector but silently pins the default parallelism.
func dropped() *Selector {
	return &Selector{K: 10, Theta: 0.5} // want `drops the Parallelism knob`
}

// forwarded plumbs the knob through; silent.
func forwarded(p int) *Selector {
	return &Selector{K: 10, Theta: 0.5, Parallelism: p}
}

// zeroValue is an explicit all-defaults literal; silent.
func zeroValue() Selector {
	return Selector{}
}

// positional literals state every field by construction; silent.
func positional() Selector {
	return Selector{10, 0.5, 2}
}

// deliberatelySerial documents the paper-methodology case; silent.
func deliberatelySerial() *Selector {
	//geolint:serial
	return &Selector{K: 10, Theta: 0.5}
}

// noKnobType literals are ignored; silent.
func noKnobType() Plain {
	return Plain{K: 3}
}
