// Package wrap seeds engine.Config-embed bypasses for the knobplumb
// analyzer, alongside compliant constructions.
package wrap

import "example.com/wrap/internal/engine"

// Session wraps the engine config with a layer-local knob, mirroring
// isos.Config / sampling.Config / geosel.Options in the real module.
type Session struct {
	engine.Config
	Filter func(int) bool
}

// Server embeds the engine config under the same promoted name.
type Server struct {
	engine.Config
	Addr string
}

// Plain has an ordinary (non-embedded) field that happens to share the
// name; it is not part of the unified-config contract.
type Plain struct {
	Config string
	Addr   string
}

// Bypassed sets a layer-local field but never forwards the embed, so
// every engine knob silently pins to its zero value.
func Bypassed() Session {
	return Session{Filter: func(int) bool { return true }} // want `composite literal of example.com/wrap.Session sets 1 field\(s\) but bypasses the embedded engine.Config`
}

// BypassedServer trips the same check on a second embedding type.
func BypassedServer() Server {
	return Server{Addr: ":8080"} // want `composite literal of example.com/wrap.Server sets 1 field\(s\) but bypasses the embedded engine.Config`
}

// Forwarded plumbs the embed through; silent.
func Forwarded(cfg engine.Config) Session {
	return Session{
		Config: cfg,
		Filter: func(int) bool { return true },
	}
}

// ZeroValue takes the zero value explicitly; an empty literal is an
// unambiguous "all defaults" and stays silent.
func ZeroValue() Session {
	return Session{}
}

// Deliberate documents an intentional all-defaults construction with
// the defaults directive; silent.
func Deliberate() Server {
	//geolint:defaults
	return Server{Addr: ":9090"}
}

// Positional literals name every field by construction; silent.
func Positional(cfg engine.Config) Server {
	return Server{cfg, ":7070"}
}

// NotEmbedded constructs a struct whose Config field is ordinary, not
// the engine embed; silent.
func NotEmbedded() Plain {
	return Plain{Addr: ":6060"}
}

// DirectConfig builds the engine config itself, which embeds nothing;
// silent.
func DirectConfig() engine.Config {
	return engine.Config{K: 5, ThetaFrac: 0.01}
}
