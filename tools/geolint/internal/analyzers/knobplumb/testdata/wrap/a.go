// Package wrap seeds dropped-knob violations for the knobplumb
// analyzer, alongside compliant constructions.
package wrap

// Selector mimics a knob-bearing config struct (core.Selector,
// isos.Config, ...) carrying both performance knobs.
type Selector struct {
	K           int
	Theta       float64
	Parallelism int
	PruneEps    float64
}

// Sampler carries only the Parallelism knob; PruneEps is never its
// business.
type Sampler struct {
	K           int
	Parallelism int
}

// Plain has no knob; its literals are never knobplumb's business.
type Plain struct {
	K int
}

// dropped is the seeded violation: a keyed literal that configures the
// selector but silently pins the defaults of both knobs. One diagnostic
// per missing knob.
func dropped() *Selector {
	return &Selector{K: 10, Theta: 0.5} // want `drops the Parallelism knob` `drops the PruneEps knob`
}

// droppedPrune forwards Parallelism but silently pins the exact-only
// pruning default.
func droppedPrune(p int) *Selector {
	return &Selector{K: 10, Parallelism: p} // want `drops the PruneEps knob`
}

// droppedPar forwards PruneEps but silently pins the default
// parallelism.
func droppedPar(eps float64) *Selector {
	return &Selector{K: 10, PruneEps: eps} // want `drops the Parallelism knob`
}

// samplerDropped only owes the knob it has.
func samplerDropped() *Sampler {
	return &Sampler{K: 10} // want `drops the Parallelism knob`
}

// forwarded plumbs both knobs through; silent.
func forwarded(p int, eps float64) *Selector {
	return &Selector{K: 10, Theta: 0.5, Parallelism: p, PruneEps: eps}
}

// zeroValue is an explicit all-defaults literal; silent.
func zeroValue() Selector {
	return Selector{}
}

// positional literals state every field by construction; silent.
func positional() Selector {
	return Selector{10, 0.5, 2, 0}
}

// deliberatelySerial documents the paper-methodology case: both knobs
// are excused by the comma-joined directives; silent.
func deliberatelySerial() *Selector {
	//geolint:serial,exact
	return &Selector{K: 10, Theta: 0.5}
}

// exactOnly excuses the pruning knob but still owes Parallelism.
func exactOnly(p int) *Selector {
	//geolint:exact
	return &Selector{K: 10, Parallelism: p}
}

// halfExcused excuses only one of two missing knobs; the other is still
// reported.
func halfExcused() *Selector {
	//geolint:serial
	return &Selector{K: 10, Theta: 0.5} // want `drops the PruneEps knob`
}

// noKnobType literals are ignored; silent.
func noKnobType() Plain {
	return Plain{K: 3}
}
