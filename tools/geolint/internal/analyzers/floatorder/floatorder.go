// Package floatorder guards the parallel engine's determinism
// invariant: every floating-point reduction in the hot-path packages
// must combine partials in a fixed order, so that every Parallelism
// setting produces bit-identical selections (DESIGN.md §5b). Two
// patterns break that promise and are reported:
//
//  1. accumulating into a float across a range over a map — map
//     iteration order is randomized, so the sum's rounding depends on
//     the schedule;
//  2. accumulating into a float captured from an enclosing scope inside
//     a worker-pool loop body (a func literal passed to a Run method) —
//     the combination order then depends on goroutine scheduling (and
//     is a data race besides).
//
// Per-index writes (out[i] = ..., out[i] += ...) stay deterministic and
// are not flagged; the blessed pattern is per-chunk partials combined in
// chunk order.
package floatorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"geosel/tools/geolint/internal/analysis"
)

// Analyzer is the floatorder check.
var Analyzer = &analysis.Analyzer{
	Name: "floatorder",
	Doc:  "flags nondeterministically ordered float64 accumulation (map ranges, cross-worker captures) in the parallel hot paths",
	PkgFilter: func(pkgPath string) bool {
		for _, p := range []string{"internal/core", "internal/prefetch", "internal/parallel", "internal/sampling", "internal/isos"} {
			if strings.HasSuffix(pkgPath, p) || strings.Contains(pkgPath, p+"/") {
				return true
			}
		}
		return false
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			case *ast.CallExpr:
				checkPoolRun(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkMapRange reports float accumulators updated inside a range over a
// map.
func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	reportEscapingFloatAccum(pass, rng.Body, rng.Pos(), rng.End(),
		"float accumulation over map iteration order is nondeterministic; iterate a sorted slice or accumulate per-chunk partials")
}

// checkPoolRun reports float accumulators captured by a loop body handed
// to a worker pool's Run method.
func checkPoolRun(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Run" {
		return
	}
	for _, arg := range call.Args {
		fn, ok := arg.(*ast.FuncLit)
		if !ok {
			continue
		}
		reportEscapingFloatAccum(pass, fn.Body, fn.Pos(), fn.End(),
			"float accumulation into a captured variable inside a pool.Run body is schedule-ordered (and racy); write per-index partials and combine them in chunk order")
	}
}

// reportEscapingFloatAccum reports compound float assignments inside
// body whose target variable is declared outside [lo, hi) — i.e. an
// accumulator that outlives the nondeterministically ordered loop.
// Indexed writes (out[i] += ...) are per-element and therefore fine.
func reportEscapingFloatAccum(pass *analysis.Pass, body *ast.BlockStmt, lo, hi token.Pos, msg string) {
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		default:
			return true
		}
		for _, lhs := range as.Lhs {
			obj := accumTarget(pass, lhs)
			if obj == nil || !isFloat(obj.Type()) {
				continue
			}
			if obj.Pos() >= lo && obj.Pos() < hi {
				continue // loop-local accumulator: order within one chunk is fixed
			}
			if pass.Suppressed(as.Pos(), "floatorder") {
				continue
			}
			pass.Reportf(as.Pos(), "%s accumulates into %s declared outside the loop: %s", as.Tok, obj.Name(), msg)
		}
		return true
	})
}

// accumTarget resolves the variable behind an accumulation target,
// returning nil for targets (like index expressions) that are
// per-element and deterministic.
func accumTarget(pass *analysis.Pass, lhs ast.Expr) types.Object {
	switch lhs := lhs.(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[lhs]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[lhs.Sel]
	}
	return nil
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
