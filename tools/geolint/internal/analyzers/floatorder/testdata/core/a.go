// Package core seeds deliberate violations of the floatorder analyzer
// (plus negative cases that must stay silent).
package core

// pool mimics parallel.Pool's Run shape without importing it.
type pool struct{}

func (pool) Run(n int, fn func(int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

// mapOrderSum is the seeded violation: a float64 reduction whose
// rounding depends on randomized map iteration order.
func mapOrderSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `float accumulation over map iteration order`
	}
	return sum
}

// capturedAccum is the seeded violation for the cross-worker shape: a
// captured accumulator mutated inside a pool.Run body.
func capturedAccum(p pool, xs []float64) float64 {
	var total float64
	p.Run(len(xs), func(i int) {
		total += xs[i] // want `captured variable inside a pool.Run body`
	})
	return total
}

// chunkedSum is the blessed pattern: per-index partials combined in
// chunk order. It must not be flagged.
func chunkedSum(p pool, xs []float64) float64 {
	partials := make([]float64, 4)
	p.Run(4, func(chunk int) {
		var part float64 // chunk-local accumulator: fixed order within the chunk
		for i := chunk; i < len(xs); i += 4 {
			part += xs[i]
		}
		partials[chunk] = part
	})
	var sum float64
	for _, p := range partials {
		sum += p
	}
	return sum
}

// mapKeysOnly ranges over a map without accumulating floats; silent.
func mapKeysOnly(m map[string]float64) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// perIndex writes per-element inside the worker body; deterministic and
// silent.
func perIndex(p pool, out, xs []float64) {
	p.Run(len(xs), func(i int) {
		out[i] += xs[i] * 2
	})
}

// suppressed shows the escape hatch.
func suppressed(m map[int]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v //geolint:floatorder
	}
	return sum
}
