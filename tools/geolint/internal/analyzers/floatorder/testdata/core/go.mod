module geosel/internal/core

go 1.22
