package floatorder_test

import (
	"testing"

	"geosel/tools/geolint/internal/analysis/analysistest"
	"geosel/tools/geolint/internal/analyzers/floatorder"
)

func TestFloatOrder(t *testing.T) {
	analysistest.Run(t, floatorder.Analyzer, "testdata/core")
}
