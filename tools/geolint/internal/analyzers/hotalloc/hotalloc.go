// Package hotalloc enforces the zero-allocation discipline of the
// greedy hot loop statically. Functions marked "//geolint:hotpath" (or
// every method of a type so marked) are allocation roots; the analyzer
// closes over the intra-package call graph from those roots and flags
// allocation-inducing constructs in every reachable function: closure
// captures, implicit interface boxing, make/new/composite-literal heap
// allocations, appends to unsized local slices, map iteration, defer
// inside loops, and fmt/string concatenation. Branches whose condition
// is a compile-time constant false (the release-build shape of
// invariant.Enabled) are skipped, mirroring the compiler's dead-code
// elimination. A "//geolint:coldpath" directive on a function excludes
// it from the hot set and stops propagation through it; on an
// individual line it acknowledges one deliberate allocation site.
package hotalloc

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"geosel/tools/geolint/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "flags allocation-inducing constructs reachable from " +
		"//geolint:hotpath roots; //geolint:coldpath excludes a function " +
		"or acknowledges one site",
	Run: run,
}

// unit is one scannable body: a function declaration or a root func
// literal (task and kernel closures are annotated directly because they
// are dispatched through fields or returned, which static call-graph
// construction cannot follow).
type unit struct {
	name string
	body *ast.BlockStmt
	// lit is set for root literals, whose own captures are not findings:
	// the closure is created once, off the hot path, and only runs hot.
	lit *ast.FuncLit
	// results are the unit's result types, for return-boxing checks.
	results *types.Tuple
}

func run(pass *analysis.Pass) error {
	w := &walker{
		pass:     pass,
		decls:    make(map[*types.Func]*ast.FuncDecl),
		hot:      make(map[*types.Func]bool),
		rootLits: make(map[*ast.FuncLit]bool),
	}
	hotTypes := make(map[string]bool)
	var order []*types.Func // deterministic seeding
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *ast.FuncDecl:
				if obj, ok := pass.TypesInfo.Defs[d.Name].(*types.Func); ok && d.Body != nil {
					w.decls[obj] = d
					order = append(order, obj)
				}
			case *ast.GenDecl:
				if d.Tok != token.TYPE {
					continue
				}
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if pass.Suppressed(ts.Pos(), "hotpath") || pass.Suppressed(d.Pos(), "hotpath") {
						hotTypes[ts.Name.Name] = true
					}
				}
			}
		}
	}

	cold := func(pos token.Pos) bool { return pass.Suppressed(pos, "coldpath") }

	// Seed the worklist with annotated declarations, methods of
	// annotated types, and annotated literals (task and kernel closures
	// are annotated directly because they are dispatched through fields
	// or returned, which static call-graph construction cannot follow).
	for _, obj := range order {
		d := w.decls[obj]
		if pass.Suppressed(d.Pos(), "hotpath") || hotTypes[recvTypeName(d)] {
			w.markHot(obj)
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok && pass.Suppressed(lit.Pos(), "hotpath") && !cold(lit.Pos()) {
				w.rootLits[lit] = true
				var results *types.Tuple
				if sig, ok := pass.TypesInfo.Types[lit].Type.(*types.Signature); ok {
					results = sig.Results()
				}
				w.queue = append(w.queue, unit{name: "func literal", body: lit.Body, lit: lit, results: results})
			}
			return true
		})
	}

	// Scanning a unit reports its findings and feeds the reachability
	// worklist: every reference to a package-local function from live
	// (non-constant-false) hot code marks the target hot, and each
	// function is scanned at most once. analysis.Run sorts diagnostics
	// by position, so worklist order does not leak into the output.
	for len(w.queue) > 0 {
		u := w.queue[0]
		w.queue = w.queue[1:]
		s := &scanner{pass: pass, w: w, unit: u}
		s.results = append(s.results, u.results)
		s.collectUnsized(u.body)
		s.stmt(u.body, 0)
	}
	return nil
}

// walker owns the cross-unit reachability state of one package run.
type walker struct {
	pass     *analysis.Pass
	decls    map[*types.Func]*ast.FuncDecl
	hot      map[*types.Func]bool
	rootLits map[*ast.FuncLit]bool
	queue    []unit
}

// markHot queues a package-local function for scanning unless it is
// already hot or declared //geolint:coldpath (which stops propagation).
func (w *walker) markHot(obj *types.Func) {
	d := w.decls[obj]
	if d == nil || w.hot[obj] || w.pass.Suppressed(d.Pos(), "coldpath") {
		return
	}
	w.hot[obj] = true
	w.queue = append(w.queue, unit{
		name:    obj.Name(),
		body:    d.Body,
		results: obj.Type().(*types.Signature).Results(),
	})
}

// edge records a reference to a function from live hot code.
func (w *walker) edge(id *ast.Ident) {
	if obj, ok := w.pass.TypesInfo.Uses[id].(*types.Func); ok && obj.Pkg() == w.pass.Pkg {
		w.markHot(obj)
	}
}

// recvTypeName returns the receiver's base type name, or "".
func recvTypeName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return ""
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// scanner walks one hot unit reporting allocation findings. Statements
// under a constant-false condition are skipped, and every finding honors
// a same-line or line-above //geolint:coldpath directive.
type scanner struct {
	pass    *analysis.Pass
	w       *walker
	unit    unit
	unsized map[types.Object]bool
	// results tracks the enclosing function-literal result stack so
	// return statements check against the right signature.
	results []*types.Tuple
	// concats marks string-concatenation operands already covered by an
	// enclosing reported concatenation, so a+b+c reports once.
	concats map[ast.Expr]bool
}

func (s *scanner) reportf(pos token.Pos, format string, args ...any) {
	if !s.pass.Suppressed(pos, "coldpath") {
		s.pass.Reportf(pos, format, args...)
	}
}

// collectUnsized records locals declared without a capacity — `var s
// []T`, `s := []T{}` or a make without a cap argument — whose appends
// therefore allocate as they grow. Appends to fields, parameters and
// reslice aliases of arena state are deliberately not flagged.
func (s *scanner) collectUnsized(body ast.Node) {
	s.unsized = make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 0 {
					continue
				}
				for _, name := range vs.Names {
					if obj := s.pass.TypesInfo.Defs[name]; obj != nil && isSlice(obj.Type()) {
						s.unsized[obj] = true
					}
				}
			}
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := s.pass.TypesInfo.Defs[id]
				if obj == nil || !isSlice(obj.Type()) {
					continue
				}
				switch rhs := n.Rhs[i].(type) {
				case *ast.CompositeLit:
					if len(rhs.Elts) == 0 {
						s.unsized[obj] = true
					}
				case *ast.CallExpr:
					if isBuiltin(s.pass, rhs, "make") && len(rhs.Args) < 3 {
						s.unsized[obj] = true
					}
				case *ast.Ident:
					if rhs.Name == "nil" {
						s.unsized[obj] = true
					}
				}
			}
		}
		return true
	})
}

func isSlice(t types.Type) bool {
	_, ok := t.Underlying().(*types.Slice)
	return ok
}

func isConstZero(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return false
	}
	v, exact := constant.Int64Val(tv.Value)
	return exact && v == 0
}

func isBuiltin(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}

// stmt walks one statement at the given loop depth.
func (s *scanner) stmt(n ast.Stmt, loops int) {
	switch n := n.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range n.List {
			s.stmt(st, loops)
		}
	case *ast.IfStmt:
		s.stmt(n.Init, loops)
		// A condition the compiler proves false is dead code — the
		// release-build shape of `if invariant.Enabled { ... }` — and a
		// constant-true condition makes the else branch dead.
		if v := s.constBool(n.Cond); v != nil {
			if *v {
				s.stmt(n.Body, loops)
			} else {
				s.stmt(n.Else, loops)
			}
			return
		}
		s.expr(n.Cond)
		s.stmt(n.Body, loops)
		s.stmt(n.Else, loops)
	case *ast.ForStmt:
		s.stmt(n.Init, loops)
		s.expr(n.Cond)
		s.stmt(n.Post, loops)
		s.stmt(n.Body, loops+1)
	case *ast.RangeStmt:
		if t := s.typeOf(n.X); t != nil {
			if _, ok := t.Underlying().(*types.Map); ok {
				s.reportf(n.Pos(), "range over a map in hot code: iteration order is random and per-iteration cost is high; iterate a slice instead")
			}
		}
		s.expr(n.X)
		s.stmt(n.Body, loops+1)
	case *ast.DeferStmt:
		if loops > 0 {
			s.reportf(n.Pos(), "defer inside a loop allocates a defer record per iteration; hoist it out of the loop")
		}
		s.expr(n.Call)
	case *ast.AssignStmt:
		s.assign(n)
	case *ast.ReturnStmt:
		s.ret(n)
	case *ast.ExprStmt:
		s.expr(n.X)
	case *ast.GoStmt:
		s.expr(n.Call)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					s.valueSpec(vs)
				}
			}
		}
	case *ast.SwitchStmt:
		s.stmt(n.Init, loops)
		s.expr(n.Tag)
		for _, c := range n.Body.List {
			cc := c.(*ast.CaseClause)
			for _, e := range cc.List {
				s.expr(e)
			}
			for _, st := range cc.Body {
				s.stmt(st, loops)
			}
		}
	case *ast.TypeSwitchStmt:
		s.stmt(n.Init, loops)
		s.stmt(n.Assign, loops)
		for _, c := range n.Body.List {
			cc := c.(*ast.CaseClause)
			for _, st := range cc.Body {
				s.stmt(st, loops)
			}
		}
	case *ast.SelectStmt:
		for _, c := range n.Body.List {
			cc := c.(*ast.CommClause)
			s.stmt(cc.Comm, loops)
			for _, st := range cc.Body {
				s.stmt(st, loops)
			}
		}
	case *ast.LabeledStmt:
		s.stmt(n.Stmt, loops)
	case *ast.IncDecStmt:
		s.expr(n.X)
	case *ast.SendStmt:
		s.expr(n.Chan)
		s.expr(n.Value)
	}
}

// constBool returns the condition's compile-time boolean value, or nil
// when it is not a constant.
func (s *scanner) constBool(cond ast.Expr) *bool {
	tv, ok := s.pass.TypesInfo.Types[cond]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Bool {
		return nil
	}
	v := constant.BoolVal(tv.Value)
	return &v
}

func (s *scanner) typeOf(e ast.Expr) types.Type {
	if tv, ok := s.pass.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func (s *scanner) assign(n *ast.AssignStmt) {
	for _, e := range n.Rhs {
		s.expr(e)
	}
	for _, e := range n.Lhs {
		s.expr(e)
	}
	if n.Tok != token.ASSIGN || len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i, lhs := range n.Lhs {
		if t := s.typeOf(lhs); t != nil {
			s.boxed(n.Rhs[i], t, "assignment")
		}
	}
}

func (s *scanner) valueSpec(vs *ast.ValueSpec) {
	for _, v := range vs.Values {
		s.expr(v)
	}
	if vs.Type == nil {
		return
	}
	t := s.typeOf(vs.Type)
	if t == nil {
		return
	}
	for _, v := range vs.Values {
		s.boxed(v, t, "assignment")
	}
}

func (s *scanner) ret(n *ast.ReturnStmt) {
	for _, e := range n.Results {
		s.expr(e)
	}
	results := s.results[len(s.results)-1]
	if results == nil || results.Len() != len(n.Results) {
		return
	}
	for i, e := range n.Results {
		s.boxed(e, results.At(i).Type(), "return")
	}
}

// expr walks one expression.
func (s *scanner) expr(n ast.Expr) {
	if n == nil {
		return
	}
	switch n := n.(type) {
	case *ast.FuncLit:
		s.funcLit(n)
	case *ast.CallExpr:
		s.call(n)
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
				s.reportf(n.Pos(), "&composite literal allocates on the heap when it escapes; reuse arena state")
				for _, e := range ast.Unparen(n.X).(*ast.CompositeLit).Elts {
					s.expr(e)
				}
				return
			}
		}
		s.expr(n.X)
	case *ast.CompositeLit:
		s.compositeLit(n)
	case *ast.BinaryExpr:
		s.binary(n)
	case *ast.ParenExpr:
		s.expr(n.X)
	case *ast.Ident:
		s.w.edge(n)
	case *ast.SelectorExpr:
		s.w.edge(n.Sel)
		s.expr(n.X)
	case *ast.IndexExpr:
		s.expr(n.X)
		s.expr(n.Index)
	case *ast.SliceExpr:
		s.expr(n.X)
		s.expr(n.Low)
		s.expr(n.High)
		s.expr(n.Max)
	case *ast.StarExpr:
		s.expr(n.X)
	case *ast.TypeAssertExpr:
		s.expr(n.X)
	case *ast.KeyValueExpr:
		s.expr(n.Value)
	}
}

// funcLit reports a capturing literal encountered inside a hot unit
// (creating the closure allocates per execution) and keeps scanning its
// body as hot code, since hot-created closures run hot.
func (s *scanner) funcLit(lit *ast.FuncLit) {
	if s.w.rootLits[lit] {
		return // scanned as its own unit; a root's own captures are setup cost
	}
	if caps := s.captures(lit); len(caps) > 0 {
		s.reportf(lit.Pos(), "func literal captures %s: creating the closure allocates each time this code runs; hoist it or bind it once at setup", strings.Join(caps, ", "))
	}
	var results *types.Tuple
	if sig, ok := s.pass.TypesInfo.Types[lit].Type.(*types.Signature); ok {
		results = sig.Results()
	}
	s.results = append(s.results, results)
	s.stmt(lit.Body, 0)
	s.results = s.results[:len(s.results)-1]
}

// captures lists the function-local variables a literal references from
// enclosing scopes. Field and method selectors resolve to field/method
// objects and are filtered out; package-level variables are not closure
// captures.
func (s *scanner) captures(lit *ast.FuncLit) []string {
	seen := make(map[types.Object]bool)
	var out []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := s.pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		if v.Parent() == s.pass.Pkg.Scope() || (v.Pos() >= lit.Pos() && v.Pos() < lit.End()) {
			return true
		}
		seen[v] = true
		out = append(out, v.Name())
		return true
	})
	sort.Strings(out)
	return out
}

func (s *scanner) call(call *ast.CallExpr) {
	for _, a := range call.Args {
		s.expr(a)
	}
	fun := ast.Unparen(call.Fun)
	s.expr(fun)

	// Explicit conversion to an interface type.
	if tv, ok := s.pass.TypesInfo.Types[fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 {
			s.boxed(call.Args[0], tv.Type, "conversion")
		}
		return
	}

	// Builtins that allocate.
	if id, ok := fun.(*ast.Ident); ok {
		if _, builtin := s.pass.TypesInfo.Uses[id].(*types.Builtin); builtin {
			switch id.Name {
			case "make":
				s.makeCall(call)
			case "new":
				s.reportf(call.Pos(), "new allocates on the heap when the value escapes; reuse arena state")
			case "append":
				s.appendCall(call)
			case "panic":
				if len(call.Args) == 1 {
					s.boxed(call.Args[0], nil, "argument")
				}
			}
			return
		}
	}

	// fmt on the hot path allocates for formatting state and boxing.
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if obj := s.pass.TypesInfo.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
			s.reportf(call.Pos(), "fmt call in hot code allocates; format errors and logs off the hot path")
			return
		}
	}

	// Implicit interface conversions at the call boundary.
	tv, ok := s.pass.TypesInfo.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, a := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // s... passes the slice through, no boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt != nil && types.IsInterface(pt) {
			s.boxed(a, pt, "argument")
		}
	}
}

func (s *scanner) makeCall(call *ast.CallExpr) {
	t := s.typeOf(call)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Map:
		s.reportf(call.Pos(), "make allocates a map in hot code; hoist it into setup/arena state")
	case *types.Chan:
		s.reportf(call.Pos(), "make allocates a channel in hot code; hoist it into setup/arena state")
	case *types.Slice:
		if len(call.Args) == 2 && isConstZero(s.pass, call.Args[1]) {
			s.reportf(call.Pos(), "make without an explicit capacity allocates and may regrow in hot code; size it once at setup")
		} else {
			s.reportf(call.Pos(), "make allocates in hot code; hoist the buffer into setup/arena state")
		}
	}
}

func (s *scanner) appendCall(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return
	}
	if obj := s.pass.TypesInfo.Uses[id]; obj != nil && s.unsized[obj] {
		s.reportf(call.Pos(), "append to unsized local slice %s allocates as it grows; pre-size it or reuse arena state", id.Name)
	}
}

func (s *scanner) compositeLit(lit *ast.CompositeLit) {
	for _, e := range lit.Elts {
		s.expr(e)
	}
	t := s.typeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		s.reportf(lit.Pos(), "slice literal allocates in hot code; hoist it into setup/arena state")
	case *types.Map:
		s.reportf(lit.Pos(), "map literal allocates in hot code; hoist it into setup/arena state")
	}
}

func (s *scanner) binary(n *ast.BinaryExpr) {
	if n.Op == token.ADD && !s.concats[n] {
		if t := s.typeOf(n); t != nil {
			if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
				if tv := s.pass.TypesInfo.Types[n]; tv.Value == nil { // non-constant concatenation
					s.reportf(n.Pos(), "string concatenation allocates in hot code; build strings off the hot path")
					s.markConcatOperands(n)
				}
			}
		}
	}
	s.expr(n.X)
	s.expr(n.Y)
}

// markConcatOperands suppresses nested reports so a+b+c reports once.
func (s *scanner) markConcatOperands(n *ast.BinaryExpr) {
	if s.concats == nil {
		s.concats = make(map[ast.Expr]bool)
	}
	for _, e := range []ast.Expr{n.X, n.Y} {
		if sub, ok := ast.Unparen(e).(*ast.BinaryExpr); ok && sub.Op == token.ADD {
			s.concats[sub] = true
			s.markConcatOperands(sub)
		}
	}
}

// boxed reports an implicit interface conversion of a concrete value.
// target nil means "some interface" (panic's parameter). Constants,
// nils, interface-typed values and pointer-shaped values (pointers,
// channels, maps, funcs, unsafe pointers — stored directly in the
// interface word) do not allocate and are skipped.
func (s *scanner) boxed(arg ast.Expr, target types.Type, where string) {
	if target != nil && !types.IsInterface(target) {
		return
	}
	tv, ok := s.pass.TypesInfo.Types[arg]
	if !ok || tv.Value != nil {
		return
	}
	at := tv.Type
	if at == nil {
		return
	}
	if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	if types.IsInterface(at) || pointerShaped(at) {
		return
	}
	name := "interface"
	if target != nil {
		name = types.TypeString(target, func(p *types.Package) string { return p.Name() })
	}
	s.reportf(arg.Pos(), "%s boxes %s into %s and allocates in hot code; keep hot values concrete",
		where, types.TypeString(at, func(p *types.Package) string { return p.Name() }), name)
}

func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}
