// Package geosel seeds allocation violations in hot-path code for the
// hotalloc analyzer, alongside compliant and suppressed sites.
package geosel

import "fmt"

// debug mirrors the release-build shape of invariant.Enabled: branches
// under a constant-false condition are dead code and must not report.
const debug = false

type state struct {
	buf   []float64
	items map[int]float64
}

//geolint:hotpath
func hotLoop(st *state, xs []float64) float64 {
	acc := 0.0
	for i := range xs {
		f := func() float64 { return xs[i] + acc } // want `func literal captures acc, i, xs`
		acc += f()
	}
	helper(st) // pulls helper into the hot set
	return acc
}

// helper is hot by reachability from hotLoop, not by annotation.
func helper(st *state) {
	tmp := make([]float64, 0) // want `make without an explicit capacity`
	tmp = append(tmp, 1)      // want `append to unsized local slice tmp`
	st.buf = tmp
	st.items = map[int]float64{1: 2} // want `map literal allocates`
	for k, v := range st.items {     // want `range over a map`
		st.buf[0] += float64(k) * v
	}
}

func sink(v any) { _ = v }

//geolint:hotpath
func hotBox(x int) any {
	sink(x)  // want `argument boxes int into any`
	return x // want `return boxes int into any`
}

func cleanup() {}

//geolint:hotpath
func hotDefer(n int) {
	for i := 0; i < n; i++ {
		defer cleanup() // want `defer inside a loop`
	}
}

//geolint:hotpath
func hotFmt(name string, id int) string {
	s := fmt.Sprintf("%s-%d", name, id) // want `fmt call in hot code allocates`
	return s + name                     // want `string concatenation allocates`
}

//geolint:hotpath
func hotAlloc(n int) float64 {
	p := &state{buf: make([]float64, n)} // want `&composite literal allocates` `make allocates in hot code`
	q := new(state)                      // want `new allocates`
	ch := make(chan int)                 // want `make allocates a channel`
	close(ch)
	return p.buf[0] + float64(len(q.buf))
}

// pair is hot at type level: every method is a root.
//
//geolint:hotpath
type pair struct{ xs, ys []float64 }

// at is clean and must stay silent.
func (p *pair) at(i int) float64 { return p.xs[i] * p.ys[i] }

func (p *pair) grow(ids map[int]bool) {
	p.xs = append(p.xs, 0)  // silent: field append, arena-owned
	m := make(map[int]bool) // want `make allocates a map`
	for id := range ids {   // want `range over a map`
		m[id] = true
	}
}

// setup builds the pair off the hot path; coldpath on the declaration
// excludes it and stops propagation into allocate.
//
//geolint:coldpath
func (p *pair) setup(n int) {
	p.xs = allocate(n)
	p.ys = allocate(n)
}

// allocate is only referenced from coldpath code and must stay silent.
func allocate(n int) []float64 {
	out := []float64{}
	for i := 0; i < n; i++ {
		out = append(out, float64(i))
	}
	return out
}

//geolint:hotpath
func hotChecked(xs []float64) float64 {
	t := 0.0
	for _, x := range xs {
		t += x
	}
	if debug {
		// Dead in release builds: skipped like the compiler would.
		fmt.Println("total", t)
		audit(t)
	}
	return t
}

// audit is referenced only from dead code and must stay silent.
func audit(v float64) {
	s := fmt.Sprint(v)
	_ = s + s
}

// hotSnapshot acknowledges a deliberate diagnostics-only allocation.
//
//geolint:hotpath
func hotSnapshot(n int) []int {
	out := make([]int, 0, n) //geolint:coldpath
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}

// hotGrow acknowledges a grow-once arena fallback on the line above.
//
//geolint:hotpath
func hotGrow(dst []float64, n int) []float64 {
	if cap(dst) < n {
		//geolint:coldpath
		dst = make([]float64, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = 0
	}
	return dst
}

// kernel returns a hot closure: the literal itself is a root, its own
// captures are setup cost, but its body is scanned.
func kernel(xs []float64, items map[int]float64) func(int) float64 {
	return func(i int) float64 { //geolint:hotpath
		v := xs[i]
		for _, w := range items { // want `range over a map`
			v += w
		}
		return v
	}
}
