package hotalloc_test

import (
	"testing"

	"geosel/tools/geolint/internal/analysis/analysistest"
	"geosel/tools/geolint/internal/analyzers/hotalloc"
)

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, hotalloc.Analyzer, "testdata/geosel")
}
