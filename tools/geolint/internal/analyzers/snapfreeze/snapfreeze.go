// Package snapfreeze enforces the live store's snapshot-ownership
// contract: a geodata.View hands out pointers into epoch-shared state —
// the *geodata.Collection and the object slice behind it are owned by
// the snapshot and shared, unsynchronized, with every other reader and
// with the writer's append tail. Code outside the owning packages
// (internal/geodata and internal/livestore) must treat anything
// reachable from View.Collection() as frozen: no element writes, no
// field replacement, no calls to the collection's mutating methods
// (Add, ApplyTFIDF). A violation is a data race against concurrent
// epoch commits and — worse — silently corrupts every session pinned to
// the same snapshot.
//
// The check is structural and intra-function, which is where every
// realistic violation lives: it tracks identifiers assigned from a
// `<view>.Collection()` call (and slice aliases of their .Objects
// field) through straight-line code, and flags
//
//   - writes through the collection: c.Objects = …, c.Vocab = …,
//     c.Objects[i] = …, c.Objects[i].Weight = …;
//   - writes through a retained alias: objs := c.Objects; objs[i] = …;
//   - mutating method calls: c.Add(…), c.ApplyTFIDF().
//
// Reads are free, as is append on an alias: snapshots cap their object
// slice (objs[:n:n]), so append always reallocates instead of racing
// the writer's tail. Deliberate ownership transfers — a test that
// builds a throwaway store around a collection it just constructed, a
// tool that explicitly clones — annotate the statement with
// "//geolint:owner".
package snapfreeze

import (
	"go/ast"
	"go/types"
	"strings"

	"geosel/tools/geolint/internal/analysis"
)

// geodataPathSuffix identifies the collection-owning package by
// import-path suffix, so the check works both on the real module and on
// the self-contained testdata module.
const geodataPathSuffix = "internal/geodata"

// ownerPathSuffixes are the packages allowed to mutate snapshot state:
// the type's home and the store that builds snapshots.
var ownerPathSuffixes = []string{"internal/geodata", "internal/livestore"}

// mutators are the *geodata.Collection methods that mutate it.
var mutators = map[string]bool{"Add": true, "ApplyTFIDF": true}

// Analyzer is the snapfreeze check.
var Analyzer = &analysis.Analyzer{
	Name: "snapfreeze",
	Doc:  "flags code outside the snapshot owners that mutates collections or slices obtained from a geodata.View",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, suffix := range ownerPathSuffixes {
		if strings.HasSuffix(pass.PkgPath, suffix) {
			return nil
		}
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn.Body)
		}
	}
	return nil
}

// checkFunc tracks snapshot-owned values through one function body and
// reports mutations of them. Tracking is flow-insensitive over the
// body's assignments (collected first), which over-approximates safely:
// an identifier that ever holds snapshot-owned state is treated as
// owned everywhere in the function.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	ownedCols := map[types.Object]bool{}   // idents holding a view-derived *Collection
	ownedSlices := map[types.Object]bool{} // idents aliasing a view-derived .Objects slice

	// Ownership propagates through chains (c := v.Collection(); objs :=
	// c.Objects; objs2 := objs), so iterate until the sets stop growing.
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok || len(assign.Lhs) != len(assign.Rhs) {
				return true
			}
			for i, lhs := range assign.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = pass.TypesInfo.Uses[id]
				}
				if obj == nil {
					continue
				}
				rhs := assign.Rhs[i]
				switch {
				case !ownedCols[obj] && isViewCollectionCall(pass, rhs):
					ownedCols[obj] = true
					changed = true
				case !ownedCols[obj] && isOwnedColIdent(pass, ownedCols, rhs):
					ownedCols[obj] = true
					changed = true
				case !ownedSlices[obj] && isOwnedObjectsExpr(pass, ownedCols, ownedSlices, rhs):
					ownedSlices[obj] = true
					changed = true
				}
			}
			return true
		})
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				reportWrite(pass, ownedCols, ownedSlices, lhs)
			}
		case *ast.IncDecStmt:
			reportWrite(pass, ownedCols, ownedSlices, n.X)
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok || !mutators[sel.Sel.Name] {
				return true
			}
			if !isOwnedCollection(pass, ownedCols, sel.X) {
				return true
			}
			if pass.Suppressed(n.Pos(), "owner") {
				return true
			}
			pass.Reportf(n.Pos(), "%s mutates a snapshot-owned collection obtained from a View; snapshots are shared and immutable — clone first (or annotate with //geolint:owner after a real ownership transfer)", sel.Sel.Name)
		}
		return true
	})
}

// reportWrite flags lhs when it writes through snapshot-owned state:
// a field of an owned collection, an element reached through its
// .Objects, or an element of an owned slice alias.
func reportWrite(pass *analysis.Pass, ownedCols, ownedSlices map[types.Object]bool, lhs ast.Expr) {
	for {
		switch e := lhs.(type) {
		case *ast.SelectorExpr:
			if isOwnedCollection(pass, ownedCols, e.X) {
				if !pass.Suppressed(lhs.Pos(), "owner") {
					pass.Reportf(lhs.Pos(), "write to %s of a snapshot-owned collection obtained from a View; snapshots are shared and immutable — clone first (or annotate with //geolint:owner after a real ownership transfer)", e.Sel.Name)
				}
				return
			}
			lhs = e.X
		case *ast.IndexExpr:
			if isOwnedObjectsExpr(pass, ownedCols, ownedSlices, e.X) {
				if !pass.Suppressed(lhs.Pos(), "owner") {
					pass.Reportf(lhs.Pos(), "write through a snapshot-owned object slice obtained from a View; snapshots are shared and immutable — clone first (or annotate with //geolint:owner after a real ownership transfer)")
				}
				return
			}
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		case *ast.ParenExpr:
			lhs = e.X
		default:
			return
		}
	}
}

// isViewCollectionCall matches `<expr>.Collection()` returning the
// geodata Collection pointer — the canonical snapshot handout.
func isViewCollectionCall(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Collection" {
		return false
	}
	tv, ok := pass.TypesInfo.Types[call]
	return ok && isGeodataCollectionPtr(tv.Type)
}

// isOwnedColIdent reports whether e is an identifier already marked as
// an owned collection.
func isOwnedColIdent(pass *analysis.Pass, ownedCols map[types.Object]bool, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	return ownedCols[pass.TypesInfo.Uses[id]]
}

// isOwnedCollection reports whether e evaluates to a snapshot-owned
// *Collection: a tracked identifier or a direct View.Collection() call.
func isOwnedCollection(pass *analysis.Pass, ownedCols map[types.Object]bool, e ast.Expr) bool {
	return isOwnedColIdent(pass, ownedCols, e) || isViewCollectionCall(pass, e)
}

// isOwnedObjectsExpr reports whether e evaluates to a snapshot-owned
// object slice: `<owned>.Objects` (possibly resliced) or a tracked
// slice alias.
func isOwnedObjectsExpr(pass *analysis.Pass, ownedCols, ownedSlices map[types.Object]bool, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return ownedSlices[pass.TypesInfo.Uses[e]]
	case *ast.SelectorExpr:
		return e.Sel.Name == "Objects" && isOwnedCollection(pass, ownedCols, e.X)
	case *ast.SliceExpr:
		return isOwnedObjectsExpr(pass, ownedCols, ownedSlices, e.X)
	}
	return false
}

// isGeodataCollectionPtr reports whether t is *geodata.Collection (by
// package-path suffix, to cover the testdata module).
func isGeodataCollectionPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Collection" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), geodataPathSuffix)
}
