package snapfreeze_test

import (
	"testing"

	"geosel/tools/geolint/internal/analysis/analysistest"
	"geosel/tools/geolint/internal/analyzers/snapfreeze"
)

func TestSnapFreeze(t *testing.T) {
	analysistest.Run(t, snapfreeze.Analyzer, "testdata/geosel")
}
