// Package geodata mimics the repository's collection package: same
// import-path suffix, same Collection surface, so the snapfreeze
// analyzer sees the shapes it targets in production.
package geodata

// Point is a stand-in location.
type Point struct{ X, Y float64 }

// Object is one stored object.
type Object struct {
	ID     int
	Loc    Point
	Weight float64
}

// Vocabulary is a stand-in term table.
type Vocabulary struct{}

// Collection is the shared object table a snapshot hands out.
type Collection struct {
	Objects []Object
	Vocab   *Vocabulary
}

// Add appends an object (a mutator).
func (c *Collection) Add(id int, loc Point, weight float64, text string) int {
	c.Objects = append(c.Objects, Object{ID: id, Loc: loc, Weight: weight})
	return len(c.Objects) - 1
}

// ApplyTFIDF reweights vectors in place (a mutator).
func (c *Collection) ApplyTFIDF() {}

// View is the read interface a snapshot exposes.
type View struct{ col *Collection }

// NewView wraps a collection.
func NewView(col *Collection) *View { return &View{col: col} }

// Collection hands out the snapshot-owned collection.
func (v *View) Collection() *Collection { return v.col }
