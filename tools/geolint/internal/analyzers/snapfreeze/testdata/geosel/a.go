// Package geosel seeds snapshot-mutation violations for the snapfreeze
// analyzer, alongside compliant read-only and cloning uses.
package geosel

import (
	"example.com/geosel/internal/geodata"
)

// WriteThroughCollection mutates an element through the handed-out
// collection.
func WriteThroughCollection(v *geodata.View) {
	col := v.Collection()
	col.Objects[0].Weight = 1 // want `write through a snapshot-owned object slice`
}

// WriteThroughChain mutates without naming an intermediate.
func WriteThroughChain(v *geodata.View) {
	v.Collection().Objects[2].Weight = 0.5 // want `write through a snapshot-owned object slice`
}

// ReplaceObjects swaps the snapshot's backing slice out from under
// every other reader.
func ReplaceObjects(v *geodata.View) {
	col := v.Collection()
	col.Objects = nil // want `write to Objects of a snapshot-owned collection`
}

// ReplaceVocab swaps the shared vocabulary.
func ReplaceVocab(v *geodata.View) {
	col := v.Collection()
	col.Vocab = nil // want `write to Vocab of a snapshot-owned collection`
}

// WriteThroughAlias retains the object slice and mutates it later.
func WriteThroughAlias(v *geodata.View) {
	objs := v.Collection().Objects
	objs[1].Weight = 0 // want `write through a snapshot-owned object slice`
}

// WriteThroughSecondAlias propagates ownership through a chain of
// assignments.
func WriteThroughSecondAlias(v *geodata.View) {
	col := v.Collection()
	objs := col.Objects
	tail := objs[1:]
	tail[0] = geodata.Object{} // want `write through a snapshot-owned object slice`
}

// CallAdd grows the shared collection.
func CallAdd(v *geodata.View) {
	col := v.Collection()
	col.Add(9, geodata.Point{}, 0.5, "cafe") // want `Add mutates a snapshot-owned collection`
}

// CallApplyTFIDF reweights the shared collection.
func CallApplyTFIDF(v *geodata.View) {
	v.Collection().ApplyTFIDF() // want `ApplyTFIDF mutates a snapshot-owned collection`
}

// ReadOnly only reads; silent.
func ReadOnly(v *geodata.View) float64 {
	col := v.Collection()
	sum := 0.0
	for _, o := range col.Objects {
		sum += o.Weight
	}
	return sum + col.Objects[0].Weight
}

// AppendAlias appends to an alias; silent — snapshots cap their object
// slice, so append reallocates instead of racing the writer's tail.
func AppendAlias(v *geodata.View) []geodata.Object {
	objs := v.Collection().Objects
	return append(objs, geodata.Object{ID: 1})
}

// CloneThenMutate copies before writing; silent.
func CloneThenMutate(v *geodata.View) []geodata.Object {
	objs := append([]geodata.Object(nil), v.Collection().Objects...)
	objs[0].Weight = 1
	return objs
}

// OwnCollectionIsFine mutates a collection this function built; silent.
func OwnCollectionIsFine() *geodata.Collection {
	col := &geodata.Collection{}
	col.Add(1, geodata.Point{}, 0.5, "bar")
	col.Objects[0].Weight = 0.25
	col.ApplyTFIDF()
	return col
}

// AnnotatedTransfer documents a deliberate ownership transfer; silent.
func AnnotatedTransfer(v *geodata.View) {
	col := v.Collection()
	col.ApplyTFIDF() //geolint:owner
}
