package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/token"
	"os"
	"strings"
)

// vetConfig mirrors the JSON configuration file cmd/go passes to a
// `go vet -vettool` binary for each package (one invocation per
// package, argument ending in ".cfg").
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// IsVetConfig reports whether arg names a vet configuration file, i.e.
// the binary is being driven by `go vet -vettool`.
func IsVetConfig(arg string) bool { return strings.HasSuffix(arg, ".cfg") }

// RunVetTool implements the vettool side of the `go vet -vettool`
// protocol for one package: read the config, type-check the package from
// the export data cmd/go already built, run the analyzers, print
// diagnostics to stderr and exit 2 if there were any. The (empty) facts
// output file is written unconditionally — cmd/go requires it to exist.
func RunVetTool(analyzers []*Analyzer, cfgFile string) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fatalf("reading vet config: %v", err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatalf("parsing vet config %s: %v", cfgFile, err)
	}
	if cfg.VetxOutput != "" {
		// geolint carries no inter-package facts; an empty file tells
		// cmd/go the unit completed.
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fatalf("writing facts output: %v", err)
		}
	}
	if cfg.VetxOnly {
		return
	}

	fset := token.NewFileSet()
	imp := newExportImporter(fset, cfg.PackageFile, cfg.ImportMap)
	pkg, err := typecheck(fset, imp, &listPackage{
		ImportPath: cfg.ImportPath,
		Dir:        cfg.Dir,
		GoFiles:    cfg.GoFiles,
	})
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return
		}
		fatalf("%v", err)
	}
	diags, err := Run(analyzers, []*Package{pkg})
	if err != nil {
		fatalf("%v", err)
	}
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s\n", d)
		}
		os.Exit(2)
	}
}

// PrintVersion answers the -V=full probe cmd/go sends before trusting a
// vettool. cmd/go parses "<name> version devel <buildID>" and uses the
// trailing content ID to key its vet-result cache, so the ID is a hash
// of the geolint binary itself: editing an analyzer invalidates cached
// vet verdicts.
func PrintVersion(name string) {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			sum := sha256.Sum256(data)
			id = fmt.Sprintf("%x", sum[:12])
		}
	}
	fmt.Printf("%s version devel buildID=%s\n", name, id)
}

// PrintFlags answers the -flags probe: a JSON array describing the
// tool's analyzer flags. geolint has none.
func PrintFlags() {
	fmt.Println("[]")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "geolint: "+format+"\n", args...)
	os.Exit(1)
}
