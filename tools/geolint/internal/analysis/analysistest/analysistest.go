// Package analysistest runs one analyzer over a self-contained testdata
// package and checks its diagnostics against "// want" comments, the
// same convention as golang.org/x/tools/go/analysis/analysistest: a
// comment `// want "regexp"` on a line means the analyzer must report a
// diagnostic on that line whose message matches the regexp; every
// diagnostic must be wanted and every want must be matched.
//
// Each testdata package is its own module (a go.mod beside the sources)
// so the production loader — `go list -json -export -deps` plus export-
// data type-checking — exercises the exact code path the real runs use.
// Module paths are chosen to satisfy the analyzer's PkgFilter where one
// applies.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"geosel/tools/geolint/internal/analysis"
)

// want is one expectation parsed from a comment.
type want struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads the package rooted at dir and checks the analyzer's
// diagnostics against the package's want comments.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	pkgs, err := analysis.Load(dir, ".")
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	diags, err := analysis.Run([]*analysis.Analyzer{a}, pkgs)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	var wants []*want
	for _, pkg := range pkgs {
		ws, err := collectWants(pkg.Fset, pkg.Syntax)
		if err != nil {
			t.Fatal(err)
		}
		wants = append(wants, ws...)
	}

	for _, d := range diags {
		if w := matchWant(wants, d); w != nil {
			w.matched = true
			continue
		}
		t.Errorf("unexpected diagnostic at %s:%d: %s", d.Pos.Filename, d.Pos.Line, d.Message)
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("missing diagnostic at %s:%d matching %q", w.file, w.line, w.pattern)
		}
	}
}

// matchWant finds an unmatched want on the diagnostic's line whose
// pattern matches the message.
func matchWant(wants []*want, d analysis.Diagnostic) *want {
	for _, w := range wants {
		if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.pattern.MatchString(d.Message) {
			return w
		}
	}
	return nil
}

// wantRE extracts the quoted patterns of a want comment; both
// double-quoted and backquoted forms are accepted.
var wantRE = regexp.MustCompile("//\\s*want\\s+((?:(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)\\s*)+)")

var quotedRE = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// collectWants parses every want comment in the files.
func collectWants(fset *token.FileSet, files []*ast.File) ([]*want, error) {
	var out []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range quotedRE.FindAllString(m[1], -1) {
					var pat string
					if strings.HasPrefix(q, "`") {
						pat = strings.Trim(q, "`")
					} else {
						var err error
						pat, err = strconv.Unquote(q)
						if err != nil {
							return nil, fmt.Errorf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, q, err)
						}
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					out = append(out, &want{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}
	return out, nil
}
