// Package analysis is a small, dependency-free re-implementation of the
// parts of golang.org/x/tools/go/analysis that geolint needs: an
// Analyzer value describing one check, a Pass carrying one type-checked
// package, and diagnostics. It exists because this repository builds
// offline against the standard library only; the shapes mirror the real
// framework so the analyzers port to x/tools unchanged if the dependency
// ever becomes available.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and suppression
	// directives ("//geolint:<name-or-directive>").
	Name string
	// Doc is a one-paragraph description of what the analyzer reports.
	Doc string
	// PkgFilter, when non-nil, restricts the analyzer to packages whose
	// import path it accepts. Nil means every package.
	PkgFilter func(pkgPath string) bool
	// Run performs the check on one package and reports findings through
	// the pass.
	Run func(*Pass) error
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	PkgPath   string
	TypesInfo *types.Info

	directives map[string]map[int][]string // filename -> line -> directives
	report     func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Suppressed reports whether a "//geolint:<directive>" comment appears on
// the same line as pos or on the line directly above it, which is the
// per-site escape hatch for deliberate violations.
func (p *Pass) Suppressed(pos token.Pos, directive string) bool {
	if p.directives == nil {
		p.directives = collectDirectives(p.Fset, p.Files)
	}
	position := p.Fset.Position(pos)
	lines := p.directives[position.Filename]
	for _, line := range []int{position.Line, position.Line - 1} {
		for _, d := range lines[line] {
			if d == directive {
				return true
			}
		}
	}
	return false
}

// collectDirectives indexes "//geolint:a,b" comments by file and line.
func collectDirectives(fset *token.FileSet, files []*ast.File) map[string]map[int][]string {
	out := make(map[string]map[int][]string)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "geolint:") {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := out[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					out[pos.Filename] = lines
				}
				for _, d := range strings.Split(strings.TrimPrefix(text, "geolint:"), ",") {
					if d = strings.TrimSpace(d); d != "" {
						lines[pos.Line] = append(lines[pos.Line], d)
					}
				}
			}
		}
	}
	return out
}

// Run applies each analyzer to each package and returns the combined
// diagnostics sorted by position.
func Run(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		// All checks are scoped to non-test code: a `go vet`-driven run
		// hands us the package's test variant with _test.go files
		// merged in, which the standalone loader never sees.
		files := make([]*ast.File, 0, len(pkg.Syntax))
		for _, f := range pkg.Syntax {
			if !strings.HasSuffix(pkg.Fset.Position(f.Pos()).Filename, "_test.go") {
				files = append(files, f)
			}
		}
		for _, a := range analyzers {
			if a.PkgFilter != nil && !a.PkgFilter(pkg.PkgPath) {
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     files,
				Pkg:       pkg.Types,
				PkgPath:   pkg.PkgPath,
				TypesInfo: pkg.TypesInfo,
				report:    func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", pkg.PkgPath, a.Name, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}
