package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
)

// Package is one loaded, parsed and type-checked package.
type Package struct {
	PkgPath   string
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	Name       string
	Export     string
	GoFiles    []string
	ImportMap  map[string]string
	DepOnly    bool
	Error      *struct{ Err string }
}

// loadCache memoizes Load per (dir, patterns): one `go list -json
// -export` subprocess and one type-check per distinct package set per
// process, shared by every analyzer and every repeated run. Loaded
// packages are read-only after construction, so sharing is safe.
var loadCache = struct {
	sync.Mutex
	m map[string][]*Package
}{m: make(map[string][]*Package)}

// Load resolves patterns with `go list -json -export -deps` in dir,
// parses the matched (non-dependency) packages, and type-checks them
// against the compiler's export data — the same inputs `go vet` feeds a
// vettool, obtained without golang.org/x/tools. Test files are not
// loaded (GoFiles excludes them), which matches the analyzers' scope.
// Results are memoized per (dir, patterns), so a multi-analyzer run —
// or a driver invoking Load once per analyzer — pays for the package
// graph exactly once per process.
func Load(dir string, patterns ...string) ([]*Package, error) {
	key := dir
	if abs, err := filepath.Abs(dir); err == nil {
		key = abs
	}
	key += "\x00" + strings.Join(patterns, "\x00")
	loadCache.Lock()
	defer loadCache.Unlock()
	if pkgs, ok := loadCache.m[key]; ok {
		return pkgs, nil
	}
	pkgs, err := load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	loadCache.m[key] = pkgs
	return pkgs, nil
}

// load is the uncached package loader behind Load.
func load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-json", "-export", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	exportFile := make(map[string]string)
	importMap := make(map[string]string)
	var targets []*listPackage
	dec := json.NewDecoder(&stdout)
	for {
		var lp listPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exportFile[lp.ImportPath] = lp.Export
		}
		for src, canonical := range lp.ImportMap {
			importMap[src] = canonical
		}
		if !lp.DepOnly {
			p := lp
			targets = append(targets, &p)
		}
	}

	fset := token.NewFileSet()
	imp := newExportImporter(fset, exportFile, importMap)
	var pkgs []*Package
	for _, lp := range targets {
		pkg, err := typecheck(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// typecheck parses and checks one package from its file list.
func typecheck(fset *token.FileSet, imp types.Importer, lp *listPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(lp.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", path, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", lp.ImportPath, err)
	}
	return &Package{
		PkgPath:   lp.ImportPath,
		Fset:      fset,
		Syntax:    files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

// newExportImporter returns an importer that resolves every import from
// the compiler export data files named in exportFile, applying the
// source-to-canonical importMap first (vendoring, "vet"-style maps).
func newExportImporter(fset *token.FileSet, exportFile, importMap map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		if canonical, ok := importMap[path]; ok {
			path = canonical
		}
		file, ok := exportFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}
