// Package hotpath is the syntax-level reader of the repository's
// hot-path annotation vocabulary, shared by tools that cannot (or need
// not) type-check: escapediff maps compiler escape diagnostics onto hot
// functions, and the analyzer cross-check test compares AllocsPerRun
// guard coverage against annotated roots.
//
// A function is hot when its declaration carries "//geolint:hotpath" on
// the line above or the same line, when it is a method of a type so
// annotated, or when it is a function literal annotated at its opening
// line. "//geolint:coldpath" on a declaration removes it. Unlike the
// hotalloc analyzer this package performs no call-graph reachability:
// the annotated set is the stable contract surface — reachability would
// make escape baselines churn with every refactor of a helper.
package hotpath

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Func is one hot function's position in a file.
type Func struct {
	File      string // path as given to Scan/ScanDir
	Name      string // decl name, Type.method, or outer$N for literals
	StartLine int
	EndLine   int
}

// Set is the scanned hot surface of a file tree.
type Set struct {
	Funcs []Func
	// directives maps file -> line -> set of geolint directives, for
	// site-level coldpath checks.
	directives map[string]map[int]map[string]bool
}

// ScanDir parses every non-test .go file directly inside each dir and
// returns the merged hot set. File paths in the result are the join of
// dir and the base name.
func ScanDir(dirs ...string) (*Set, error) {
	set := &Set{directives: make(map[string]map[int]map[string]bool)}
	for _, dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		fset := token.NewFileSet()
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := filepath.Join(dir, name)
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %w", path, err)
			}
			set.scanFile(fset, path, f)
		}
	}
	sort.Slice(set.Funcs, func(i, j int) bool {
		a, b := set.Funcs[i], set.Funcs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		return a.StartLine < b.StartLine
	})
	return set, nil
}

// scanFile records the file's directives and hot functions.
func (s *Set) scanFile(fset *token.FileSet, path string, f *ast.File) {
	lines := make(map[int]map[string]bool)
	s.directives[path] = lines
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if !strings.HasPrefix(text, "geolint:") {
				continue
			}
			line := fset.Position(c.Pos()).Line
			if lines[line] == nil {
				lines[line] = make(map[string]bool)
			}
			for _, d := range strings.Split(strings.TrimPrefix(text, "geolint:"), ",") {
				if d = strings.TrimSpace(d); d != "" {
					lines[line][d] = true
				}
			}
		}
	}
	directiveAt := func(pos token.Pos, directive string) bool {
		line := fset.Position(pos).Line
		return lines[line][directive] || lines[line-1][directive]
	}

	hotTypes := make(map[string]bool)
	for _, d := range f.Decls {
		gd, ok := d.(*ast.GenDecl)
		if !ok || gd.Tok != token.TYPE {
			continue
		}
		for _, spec := range gd.Specs {
			if ts, ok := spec.(*ast.TypeSpec); ok {
				if directiveAt(ts.Pos(), "hotpath") || directiveAt(gd.Pos(), "hotpath") {
					hotTypes[ts.Name.Name] = true
				}
			}
		}
	}

	for _, d := range f.Decls {
		fn, ok := d.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		name := fn.Name.Name
		recv := recvTypeName(fn)
		if recv != "" {
			name = recv + "." + name
		}
		hot := directiveAt(fn.Pos(), "hotpath") || (recv != "" && hotTypes[recv])
		if hot && !directiveAt(fn.Pos(), "coldpath") {
			s.Funcs = append(s.Funcs, Func{
				File:      path,
				Name:      name,
				StartLine: fset.Position(fn.Pos()).Line,
				EndLine:   fset.Position(fn.End()).Line,
			})
		}
		// Hot literals inside this decl, named outer$1, outer$2, ... in
		// source order — stable under edits that keep literal order.
		ord := 0
		ast.Inspect(fn, func(n ast.Node) bool {
			lit, ok := n.(*ast.FuncLit)
			if !ok {
				return true
			}
			if directiveAt(lit.Pos(), "hotpath") && !directiveAt(lit.Pos(), "coldpath") {
				ord++
				s.Funcs = append(s.Funcs, Func{
					File:      path,
					Name:      fmt.Sprintf("%s$%d", name, ord),
					StartLine: fset.Position(lit.Pos()).Line,
					EndLine:   fset.Position(lit.End()).Line,
				})
			}
			return true
		})
	}
}

// recvTypeName returns the receiver's base type name, or "".
func recvTypeName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return ""
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// Enclosing returns the innermost hot function containing file:line.
func (s *Set) Enclosing(file string, line int) (Func, bool) {
	var best Func
	found := false
	for _, fn := range s.Funcs {
		if fn.File != file || line < fn.StartLine || line > fn.EndLine {
			continue
		}
		if !found || fn.StartLine >= best.StartLine {
			best, found = fn, true
		}
	}
	return best, found
}

// SiteCold reports whether file:line (or the line above) carries a
// coldpath directive, acknowledging a deliberate allocation site.
func (s *Set) SiteCold(file string, line int) bool {
	lines := s.directives[file]
	return lines[line]["coldpath"] || lines[line-1]["coldpath"]
}
