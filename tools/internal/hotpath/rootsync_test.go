package hotpath_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"geosel/tools/internal/hotpath"
)

const coreDir = "../../../internal/core"

// TestAllocGuardsCoverHotRoots keeps the two enforcement mechanisms in
// sync: every core method driven inside a testing.AllocsPerRun guard in
// alloc_test.go must carry a //geolint:hotpath annotation, so the
// hotalloc analyzer and the escapediff baseline police exactly the code
// the runtime guards measure. A guard on an unannotated method means
// the static layer has a blind spot; fix it by annotating the method.
func TestAllocGuardsCoverHotRoots(t *testing.T) {
	guarded := allocGuardCallees(t)
	declared := declaredFuncs(t)

	hot, err := hotpath.ScanDir(coreDir)
	if err != nil {
		t.Fatal(err)
	}
	hotBase := make(map[string]bool)
	for _, fn := range hot.Funcs {
		name := fn.Name
		if i := strings.IndexByte(name, '.'); i >= 0 {
			name = name[i+1:]
		}
		hotBase[name] = true
	}

	var checked []string
	for name := range guarded {
		if !declared[name] {
			continue // helper from another package (t.Fatalf etc.)
		}
		checked = append(checked, name)
		if !hotBase[name] {
			t.Errorf("alloc_test.go guards %s with AllocsPerRun, but it is not annotated //geolint:hotpath — the static analyzers are blind to it", name)
		}
	}
	// Guard the guard: if parsing ever stops finding the known roots,
	// this test would pass vacuously.
	for _, must := range []string{"lazyStep", "marginalBatch"} {
		if !guarded[must] {
			t.Errorf("expected AllocsPerRun guard driving %s in alloc_test.go; the extraction is broken or the guard was removed", must)
		}
	}
	if len(checked) == 0 {
		t.Error("no core methods found inside AllocsPerRun guards")
	}
}

// allocGuardCallees returns the method names called inside the function
// literals passed to testing.AllocsPerRun in core's alloc_test.go.
func allocGuardCallees(t *testing.T) map[string]bool {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filepath.Join(coreDir, "alloc_test.go"), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	guarded := make(map[string]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "AllocsPerRun" {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); !ok || id.Name != "testing" {
			return true
		}
		for _, arg := range call.Args {
			lit, ok := arg.(*ast.FuncLit)
			if !ok {
				continue
			}
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if c, ok := m.(*ast.CallExpr); ok {
					if s, ok := c.Fun.(*ast.SelectorExpr); ok {
						guarded[s.Sel.Name] = true
					}
				}
				return true
			})
		}
		return true
	})
	return guarded
}

// declaredFuncs returns the names of every function and method declared
// in core's non-test files.
func declaredFuncs(t *testing.T) map[string]bool {
	t.Helper()
	entries, err := os.ReadDir(coreDir)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	out := make(map[string]bool)
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(coreDir, name), nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range f.Decls {
			if fn, ok := d.(*ast.FuncDecl); ok {
				out[fn.Name.Name] = true
			}
		}
	}
	return out
}
