package escape

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"geosel/tools/internal/hotpath"
)

// collectGolden runs the full pipeline — canned -gcflags=-m transcript,
// annotated source scan, hot filtering — and returns the entries.
func collectGolden(t *testing.T) []Entry {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", "transcript.txt"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	diags, err := ParseTranscript(f)
	if err != nil {
		t.Fatal(err)
	}
	hot, err := hotpath.ScanDir(filepath.Join("testdata", "src", "hot"))
	if err != nil {
		t.Fatal(err)
	}
	return Collect(hot, diags)
}

func TestCollectGolden(t *testing.T) {
	got := collectGolden(t)
	file := filepath.Join("testdata", "src", "hot", "hot.go")
	want := []Entry{
		{Pkg: "example.com/hot", File: file, Func: "HotSum", Msg: "make([]int, 0, len(xs)) escapes to heap", Count: 1},
		{Pkg: "example.com/hot", File: file, Func: "HotSum", Msg: "moved to heap: out", Count: 1},
		{Pkg: "example.com/hot", File: file, Func: "Outer$1", Msg: "make([]int, 8) escapes to heap", Count: 1},
		{Pkg: "example.com/hot", File: file, Func: "ring.grow", Msg: "make([]int, n) escapes to heap", Count: 1},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Collect mismatch:\n got  %+v\n want %+v", got, want)
	}
}

// TestCollectFilters pins the three filtering rules individually: the
// coldpath-acknowledged new(int) in HotAck, the unannotated coldAlloc,
// and non-escape diagnostic classes must all be absent.
func TestCollectFilters(t *testing.T) {
	for _, e := range collectGolden(t) {
		switch {
		case e.Func == "HotAck":
			t.Errorf("coldpath-acknowledged site leaked into the baseline: %+v", e)
		case e.Func == "coldAlloc":
			t.Errorf("escape outside the hot set leaked into the baseline: %+v", e)
		case e.Msg == "leaking param: xs" || e.Msg == "func literal does not escape":
			t.Errorf("non-escape diagnostic class leaked into the baseline: %+v", e)
		}
	}
}

// TestDiffDeliberateEscape is the CI-failure path: a fresh run that
// gains one escape (and one grown count) against the committed baseline
// must surface exactly those as added.
func TestDiffDeliberateEscape(t *testing.T) {
	base := collectGolden(t)
	cur := append([]Entry(nil), base...)
	// A deliberate new escape in an already-clean hot function...
	cur = append(cur, Entry{Pkg: "example.com/hot", File: base[0].File, Func: "ring.grow", Msg: "moved to heap: spill", Count: 1})
	// ...and an existing site that now fires twice.
	cur[0].Count = 2

	added, removed := Diff(base, cur)
	if len(removed) != 0 {
		t.Errorf("unexpected removals: %+v", removed)
	}
	if len(added) != 2 {
		t.Fatalf("want 2 added entries, got %+v", added)
	}
	if added[0].Func != "HotSum" || added[0].Count != 1 {
		t.Errorf("grown count should diff as +1, got %+v", added[0])
	}
	if added[1].Func != "ring.grow" || added[1].Msg != "moved to heap: spill" {
		t.Errorf("new escape missing from added: %+v", added[1])
	}
}

// TestDiffRemoved covers the advisory direction: escapes that vanish
// (or shrink) prompt a re-baseline but never fail.
func TestDiffRemoved(t *testing.T) {
	base := collectGolden(t)
	cur := base[:len(base)-1]
	added, removed := Diff(base, cur)
	if len(added) != 0 {
		t.Errorf("unexpected additions: %+v", added)
	}
	if len(removed) != 1 || removed[0].Func != base[len(base)-1].Func {
		t.Errorf("want the dropped entry as removed, got %+v", removed)
	}
}

func TestDiffClean(t *testing.T) {
	base := collectGolden(t)
	added, removed := Diff(base, base)
	if len(added) != 0 || len(removed) != 0 {
		t.Errorf("identical sets must diff empty, got added=%+v removed=%+v", added, removed)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	b := &Baseline{GoVersion: "go1.24.0", Packages: []string{"./internal/core"}, Entries: collectGolden(t)}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := WriteBaseline(path, b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, b) {
		t.Errorf("round trip mismatch:\n got  %+v\n want %+v", got, b)
	}
}
