package hot

//geolint:hotpath
func HotSum(xs []int) []int {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

//geolint:hotpath
func HotAck() *int {
	v := new(int) //geolint:coldpath
	return v
}

func coldAlloc() []byte {
	return make([]byte, 64)
}

//geolint:hotpath
type ring struct{ buf []int }

func (r *ring) grow(n int) {
	r.buf = make([]int, n)
}

func Dispatch(f func()) { f() }

func Outer() {
	Dispatch(func() { //geolint:hotpath
		_ = make([]int, 8)
	})
}
