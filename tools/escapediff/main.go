// Command escapediff enforces the hot path's heap-escape baseline. It
// rebuilds the hot-path packages with -gcflags=-m, keeps the escape
// diagnostics that land inside //geolint:hotpath functions (minus
// //geolint:coldpath-acknowledged sites), and compares them against the
// committed baseline:
//
//	go run ./tools/escapediff            # check: exit 1 on new escapes
//	go run ./tools/escapediff -update    # regenerate the baseline
//
// The build cache replays -m diagnostics on cache hits, so the check is
// cheap when nothing changed. Escape analysis differs across compiler
// releases; when the running toolchain's go version does not match the
// baseline's, the check reports but exits 0 unless -strict is set, so a
// version bump cannot break every branch at once — regenerate with
// -update when upgrading.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"

	"geosel/tools/escapediff/internal/escape"
	"geosel/tools/internal/hotpath"
)

// hotPackages is the default enforcement surface: the packages on the
// greedy selection hot path (see DESIGN.md §10).
var hotPackages = []string{
	"./internal/core",
	"./internal/lazyheap",
	"./internal/parallel",
	"./internal/prefetch",
	"./internal/sim",
	"./internal/textsim",
	"./internal/tilecache",
}

func main() {
	var (
		dir      = flag.String("dir", ".", "repository root to build in")
		baseline = flag.String("baseline", "tools/escapediff/baseline.json", "baseline path, relative to -dir")
		update   = flag.Bool("update", false, "regenerate the baseline instead of checking")
		strict   = flag.Bool("strict", false, "fail on new escapes even when the go version differs from the baseline's")
	)
	flag.Parse()
	pkgs := flag.Args()
	if len(pkgs) == 0 {
		pkgs = hotPackages
	}
	if err := run(*dir, *baseline, pkgs, *update, *strict); err != nil {
		fmt.Fprintf(os.Stderr, "escapediff: %v\n", err)
		os.Exit(1)
	}
}

func run(dir, baselinePath string, pkgs []string, update, strict bool) error {
	transcript, err := buildTranscript(dir, pkgs)
	if err != nil {
		return err
	}
	diags, err := escape.ParseTranscript(bytes.NewReader(transcript))
	if err != nil {
		return err
	}
	var dirs []string
	for _, p := range pkgs {
		dirs = append(dirs, filepath.Join(dir, filepath.FromSlash(strings.TrimPrefix(p, "./"))))
	}
	hot, err := hotpath.ScanDir(dirs...)
	if err != nil {
		return err
	}
	// Diagnostics print paths relative to the build dir; the scanner
	// keyed files by joined path. Rebase diagnostics to match.
	for i := range diags {
		diags[i].File = filepath.Join(dir, filepath.FromSlash(diags[i].File))
	}
	cur := escape.Collect(hot, diags)
	// Store repo-relative slash paths so the artifact is portable.
	for i := range cur {
		if rel, err := filepath.Rel(dir, cur[i].File); err == nil {
			cur[i].File = filepath.ToSlash(rel)
		}
	}

	path := filepath.Join(dir, filepath.FromSlash(baselinePath))
	if update {
		b := &escape.Baseline{GoVersion: runtime.Version(), Packages: pkgs, Entries: cur}
		if err := escape.WriteBaseline(path, b); err != nil {
			return err
		}
		fmt.Printf("escapediff: wrote %s (%d hot-path escapes, %s)\n", path, len(cur), b.GoVersion)
		return nil
	}

	base, err := escape.ReadBaseline(path)
	if err != nil {
		return fmt.Errorf("reading baseline (run with -update to create it): %w", err)
	}
	added, removed := escape.Diff(base.Entries, cur)
	for _, e := range added {
		fmt.Printf("NEW escape in hot path: %s %s: %s (x%d)\n", e.File, e.Func, e.Msg, e.Count)
	}
	for _, e := range removed {
		fmt.Printf("escape no longer present (re-run -update to tighten the baseline): %s %s: %s (x%d)\n", e.File, e.Func, e.Msg, e.Count)
	}
	if len(added) == 0 {
		fmt.Printf("escapediff: ok — %d baselined hot-path escapes, none new\n", len(cur))
		return nil
	}
	if base.GoVersion != runtime.Version() && !strict {
		fmt.Printf("escapediff: %d new escape(s), but baseline was built with %s and this is %s; advisory only (use -strict to enforce, -update to re-baseline)\n",
			len(added), base.GoVersion, runtime.Version())
		return nil
	}
	return fmt.Errorf("%d new heap escape(s) in hot-path functions — fix them, annotate the site //geolint:coldpath with justification, or re-baseline with -update after review", len(added))
}

// buildTranscript compiles the packages with escape diagnostics on. The
// compiler prints to stderr; a failed build surfaces its output.
func buildTranscript(dir string, pkgs []string) ([]byte, error) {
	args := append([]string{"build", "-gcflags=-m"}, pkgs...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go build -gcflags=-m: %v\n%s", err, out.String())
	}
	return out.Bytes(), nil
}
